//! Machine-readable performance snapshot (`BENCH_10.json`) and the
//! perf-trend gate over the whole `BENCH_*.json` series.
//!
//! ```text
//! cargo run --release -p asr-bench --bin perf_snapshot -- [--out FILE]
//! cargo run --release -p asr-bench --bin perf_snapshot -- --check-physical-load
//! cargo run --release -p asr-bench --bin perf_snapshot -- --trend [--dir D] [--tolerance T]
//! ```
//!
//! Captures the repository's perf trajectory in one JSON file:
//!
//! * wall-clock of the `fig6` and `fig11` figure runners;
//! * *measured* page I/O of the workloads behind those figures, executed
//!   on down-scaled generated databases (whole-chain backward queries for
//!   fig6, `ins_3` updates for fig11), including the batched-probe
//!   counters (`batch_probes`, `batch_pages_saved`);
//! * the crash-recovery comparison: marginal page I/O and wall-clock of
//!   replaying a small WAL tail through incremental maintenance vs.
//!   rebuilding the ASR from scratch, plus loading a v2 checkpoint
//!   (physical page-image restore) vs. the v1 rebuild-on-load pipeline
//!   (`asr_bench::recovery`);
//! * the replication comparison: shipped bytes/pages of a warm replica
//!   catching up on a delta vs. a cold replica bootstrapping from the
//!   checkpoint — the log-shipping analogue of replay-vs-rebuild;
//! * the delta-checkpoint comparison: pages a copy-on-write delta
//!   checkpoint writes vs. an equivalent full checkpoint, and bytes a
//!   delta re-bootstrap (`Need::DeltaBootstrap`) ships vs. a full
//!   bootstrap of the same state;
//! * the PITR cost curve: `recover_to_lsn` priced at bounds 0–100% of
//!   the tip, showing replay cost growing with bound distance from the
//!   covering checkpoint;
//! * the concurrency comparison (`asr_bench::concurrency`): group-commit
//!   fsyncs per committed op at session counts 1/2/4/8 (deterministic:
//!   one modeled fsync per full group, so the ratio is `1/sessions`),
//!   and snapshot-isolated reader throughput at reader counts 1/2/4/8
//!   racing a live committing writer (row counts deterministic,
//!   wall/qps informational);
//! * the serving comparison (`asr_bench::serving`): scatter-gather
//!   span-query throughput at shard counts 1/2/4 with the fleet's merged
//!   and hottest-shard page accounting (deterministic, gated), plus a
//!   seeded chaos leg pricing the hostile-wire retry bill and the
//!   p50/p95/p99 per-query latency tail (host-dependent, informational),
//!   plus an availability leg pricing a shard outage: queries answered
//!   degraded (flagged, subset of the healthy answer) while the primary
//!   keeps committing, the self-healing reseed's shipping bill in both
//!   bootstrap modes (delta vs full), and coordinator ticks to recover;
//! * wall-clock of the full figure suite at `--jobs 1` vs `--jobs 4`,
//!   alongside the machine's available parallelism — on a single-CPU
//!   container the worker pool cannot beat the sequential run, so the
//!   speedup is reported as `null` with a note instead of a misleading
//!   sub-1.0 number (the `suite_io` jobs-invariance is still checked).
//!
//! `--check-physical-load` runs only the recovery comparison and exits
//! non-zero if physically loading the v2 checkpoint does not beat the
//! rebuild-on-load pipeline in page cost — a CI perf gate.
//!
//! `--trend` parses every `BENCH_*.json` under `--dir` (default `.`),
//! prints the per-metric trajectory table, and exits non-zero if any
//! deterministic metric (page counts, shipped bytes, page ratios — never
//! wall-clock) regressed past `--tolerance` (default 0.10) in the newest
//! snapshot.  This is the regression gate CI runs over bench history.

use std::time::Instant;

use asr_bench::concurrency::{measure_concurrency, ConcurrencyBench, ReadPoint, WritePoint};
use asr_bench::experiments::{registry, run_entries, run_entries_sharded};
use asr_bench::recovery::{
    measure_delta_checkpoint, measure_pitr, measure_recovery, measure_replication,
    DeltaCheckpointBench, PhaseCost, PitrBench, RecoveryBench, ReplicationBench, ShipCost,
};
use asr_bench::serving::{measure_serving, ServingBench, ServingPoint};
use asr_core::{AsrConfig, Decomposition, Extension};
use asr_costmodel::{profiles, Mix, Op};
use asr_workload::{execute_trace, generate, generate_trace, scale_profile, GeneratorSpec};

const SCALE: f64 = 5.0;
const QUERY_COUNT: usize = 30;
const UPDATE_COUNT: usize = 20;

struct MeasuredIo {
    reads: u64,
    writes: u64,
    batch_probes: u64,
    batch_pages_saved: u64,
}

// The recovery comparison runs at full fig6 scale: the rebuild's extent
// rescans must dwarf the per-record replay cost for the contrast to be
// visible, and the full population is still sub-second to stage.
const RECOVERY_SCALE: f64 = 1.0;
const RECOVERY_DELTA_OPS: usize = 16;

// The PITR curve needs a longer delta so the five bounds land on
// meaningfully different replay prefixes (and several sealed segments).
const PITR_DELTA_OPS: usize = 64;

fn main() {
    let mut out_path = String::from("BENCH_10.json");
    let mut check_only = false;
    let mut trend_mode = false;
    let mut trend_dir = String::from(".");
    let mut tolerance = 0.10f64;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                out_path = iter.next().unwrap_or_else(|| {
                    eprintln!("--out needs a file argument");
                    std::process::exit(2);
                });
            }
            "--check-physical-load" => check_only = true,
            "--trend" => trend_mode = true,
            "--dir" => {
                trend_dir = iter.next().unwrap_or_else(|| {
                    eprintln!("--dir needs a directory argument");
                    std::process::exit(2);
                });
            }
            "--tolerance" => {
                tolerance = iter.next().and_then(|t| t.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--tolerance needs a fractional argument, e.g. 0.10");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` — usage: \
                     perf_snapshot [--out FILE] [--check-physical-load] \
                     [--trend [--dir D] [--tolerance T]]"
                );
                std::process::exit(2);
            }
        }
    }

    if trend_mode {
        let report = asr_bench::trend::run_trend(std::path::Path::new(&trend_dir), tolerance)
            .unwrap_or_else(|e| {
                eprintln!("trend analysis failed: {e}");
                std::process::exit(2);
            });
        print!("{}", report.render(tolerance));
        if !report.regressions.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    if check_only {
        eprintln!("perf gate: physical checkpoint load vs rebuild-on-load ...");
        let b = measure_recovery(RECOVERY_SCALE, RECOVERY_DELTA_OPS);
        let physical = b.checkpoint_load.pages();
        let rebuild = b.rebuild_load.pages();
        println!(
            "physical load: {physical} pages ({:.2} ms); rebuild-on-load: {rebuild} pages \
             ({:.2} ms)",
            b.checkpoint_load.wall_ms, b.rebuild_load.wall_ms
        );
        if physical >= rebuild {
            eprintln!("FAIL: physical checkpoint load must undercut the v1 rebuild pipeline");
            std::process::exit(1);
        }
        println!(
            "OK: physical load undercuts rebuild by {} pages",
            rebuild - physical
        );
        return;
    }

    let all = registry();
    let figure = |id: &str| {
        all.iter()
            .find(|(eid, _, _)| *eid == id)
            .copied()
            .unwrap_or_else(|| panic!("{id} is registered"))
    };

    eprintln!("timing fig6 + fig11 runners ...");
    let fig6_ms = run_entries(&[figure("fig6")], 1)[0].1;
    let fig11_ms = run_entries(&[figure("fig11")], 1)[0].1;

    eprintln!("measuring fig6 backward-query workload ...");
    let fig6_io = measure_fig6_queries();
    eprintln!("measuring fig11 ins_3 workload ...");
    let fig11_io = measure_fig11_updates();

    eprintln!("measuring crash recovery: WAL replay vs full rebuild ...");
    let recovery = measure_recovery(RECOVERY_SCALE, RECOVERY_DELTA_OPS);

    eprintln!("measuring replication: warm catch-up vs cold bootstrap ...");
    let replication = measure_replication(RECOVERY_SCALE, RECOVERY_DELTA_OPS);

    eprintln!("measuring delta checkpoints: delta vs full write and re-seed ...");
    let delta_ckpt = measure_delta_checkpoint(RECOVERY_SCALE, RECOVERY_DELTA_OPS);

    eprintln!("measuring PITR: replay cost vs bound distance ...");
    let pitr = measure_pitr(RECOVERY_SCALE, PITR_DELTA_OPS);

    eprintln!("measuring serving: scatter-gather throughput at 1/2/4 shards + chaos leg ...");
    let serving = measure_serving();

    eprintln!("measuring concurrency: group-commit fsyncs/op + snapshot readers at 1/2/4/8 ...");
    let concurrency = measure_concurrency();

    eprintln!("timing the full suite, --jobs 1 ...");
    let jobs1 = Instant::now();
    let (_, suite_io1) = run_entries_sharded(&all, 1);
    let jobs1_ms = jobs1.elapsed().as_secs_f64() * 1e3;
    eprintln!("timing the full suite, --jobs 4 ...");
    let jobs4 = Instant::now();
    let (_, suite_io4) = run_entries_sharded(&all, 4);
    let jobs4_ms = jobs4.elapsed().as_secs_f64() * 1e3;
    // The sharded counters are a correctness claim, not just a number:
    // the per-worker shards merged on scope join must reconstruct the
    // exact sequential totals.
    assert_eq!(
        suite_io1, suite_io4,
        "sharded I/O aggregate must not depend on --jobs"
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a single-CPU container the jobs-4 wall comparison measures
    // scheduler overhead, not the worker pool: report `null` with a note
    // rather than a misleading sub-1.0 speedup.
    let speedup = if cpus < 2 {
        format!(
            "\"speedup_jobs4\": null,\n    \"speedup_note\": \"cpus={cpus}: jobs-4 wall \
             comparison skipped on a single-CPU machine (suite_io invariance still checked)\""
        )
    } else {
        format!("\"speedup_jobs4\": {:.2}", jobs1_ms / jobs4_ms.max(1e-9))
    };
    let json = format!(
        "{{\n  \"schema\": \"asr-bench-snapshot/9\",\n  \"figures\": {{\n    \"fig6\": {{\n      \
         \"wall_ms\": {fig6_ms:.1},\n      \"workload\": \"Q_{{0,n}}(bw) x{QUERY_COUNT} on the \
         1/{SCALE:.0}-scale profile\",\n      \"measured\": {}\n    }},\n    \"fig11\": {{\n      \
         \"wall_ms\": {fig11_ms:.1},\n      \"workload\": \"ins_3 x{UPDATE_COUNT} on the \
         1/{SCALE:.0}-scale profile\",\n      \"measured\": {}\n    }}\n  }},\n  \
         \"recovery\": {},\n  \"replication\": {},\n  \"delta_checkpoint\": {},\n  \
         \"pitr\": {},\n  \"serving\": {},\n  \"concurrency\": {},\n  \"all\": {{\n    \
         \"figures\": {},\n    \"cpus\": {cpus},\n    \"jobs1_wall_ms\": {jobs1_ms:.1},\n    \
         \"jobs4_wall_ms\": {jobs4_ms:.1},\n    {speedup},\n    \
         \"suite_io\": {{ \"page_reads\": {}, \"page_writes\": {}, \"buffer_hits\": {}, \
         \"jobs_invariant\": true }}\n  }}\n}}\n",
        io_json(&fig6_io),
        io_json(&fig11_io),
        recovery_json(&recovery),
        replication_json(&replication),
        delta_checkpoint_json(&delta_ckpt),
        pitr_json(&pitr),
        serving_json(&serving),
        concurrency_json(&concurrency, cpus),
        all.len(),
        suite_io1.reads,
        suite_io1.writes,
        suite_io1.buffer_hits,
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("could not write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("perf snapshot written to {out_path}");
}

fn phase_json(p: &PhaseCost) -> String {
    format!(
        "{{ \"wall_ms\": {:.2}, \"page_reads\": {}, \"page_writes\": {} }}",
        p.wall_ms, p.page_reads, p.page_writes
    )
}

fn recovery_json(b: &RecoveryBench) -> String {
    format!(
        "{{\n    \"workload\": \"ins_3 x{RECOVERY_DELTA_OPS} delta on the 1/{RECOVERY_SCALE:.0}-scale \
         fig6 profile, full/binary ASR\",\n    \"delta_ops\": {},\n    \
         \"records_replayed\": {},\n    \"checkpoint_load\": {},\n    \"rebuild_load\": {},\n    \
         \"wal_replay\": {},\n    \
         \"full_rebuild\": {},\n    \"replay_rebuild_page_ratio\": {:.4},\n    \
         \"physical_rebuild_page_ratio\": {:.4}\n  }}",
        b.delta_ops,
        b.records_replayed,
        phase_json(&b.checkpoint_load),
        phase_json(&b.rebuild_load),
        phase_json(&b.wal_replay),
        phase_json(&b.full_rebuild),
        b.wal_replay.pages() as f64 / b.full_rebuild.pages().max(1) as f64,
        b.checkpoint_load.pages() as f64 / b.rebuild_load.pages().max(1) as f64,
    )
}

fn ship_json(c: &ShipCost) -> String {
    format!(
        "{{ \"wall_ms\": {:.2}, \"bytes_shipped\": {}, \"pages\": {}, \"deliveries\": {}, \
         \"records_applied\": {} }}",
        c.wall_ms, c.bytes_shipped, c.pages, c.deliveries, c.records_applied
    )
}

fn replication_json(b: &ReplicationBench) -> String {
    format!(
        "{{\n    \"workload\": \"ins_3 x{RECOVERY_DELTA_OPS} delta on the \
         1/{RECOVERY_SCALE:.0}-scale fig6 profile, lossless channel\",\n    \
         \"delta_ops\": {},\n    \"catchup\": {},\n    \"bootstrap\": {},\n    \
         \"catchup_bootstrap_page_ratio\": {:.4}\n  }}",
        b.delta_ops,
        ship_json(&b.catchup),
        ship_json(&b.bootstrap),
        b.catchup.pages as f64 / b.bootstrap.pages.max(1) as f64,
    )
}

fn delta_checkpoint_json(b: &DeltaCheckpointBench) -> String {
    format!(
        "{{\n    \"workload\": \"ins_3 x{RECOVERY_DELTA_OPS} delta on the \
         1/{RECOVERY_SCALE:.0}-scale fig6 profile, delta checkpoint on the create-time base\",\n    \
         \"delta_ops\": {},\n    \"chain_depth\": {},\n    \"delta_reseeds\": {},\n    \
         \"checkpoint\": {{ \"wall_ms\": {:.2}, \"delta\": {{ \"page_writes\": {}, \
         \"bytes\": {} }}, \"full\": {{ \"page_writes\": {} }}, \
         \"delta_full_page_ratio\": {:.4} }},\n    \
         \"bootstrap\": {{ \"delta\": {}, \"full\": {}, \
         \"delta_full_page_ratio\": {:.4} }}\n  }}",
        b.delta_ops,
        b.chain_depth,
        b.delta_reseeds,
        b.checkpoint_wall_ms,
        b.delta_pages,
        b.delta_bytes,
        b.full_pages,
        b.delta_pages as f64 / b.full_pages.max(1) as f64,
        ship_json(&b.delta_bootstrap),
        ship_json(&b.full_bootstrap),
        b.delta_bootstrap.pages as f64 / b.full_bootstrap.pages.max(1) as f64,
    )
}

fn pitr_json(b: &PitrBench) -> String {
    let points = b
        .points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"bound\": {}, \"wall_ms\": {:.2}, \"pages_read\": {}, \
                 \"records_replayed\": {}, \"segments_read\": {} }}",
                p.bound, p.wall_ms, p.pages_read, p.records_replayed, p.segments_read
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n    \"workload\": \"ins_3 x{PITR_DELTA_OPS} delta on the \
         1/{RECOVERY_SCALE:.0}-scale fig6 profile, 192-byte segment threshold\",\n    \
         \"tip_lsn\": {},\n    \"points\": [\n{points}\n    ]\n  }}",
        b.tip,
    )
}

fn serving_point_json(p: &ServingPoint) -> String {
    // `pages`-named leaves are deterministic (exact page simulation,
    // lossless links) and hence trend-gated; wall/qps are informational.
    format!(
        "      {{ \"shards\": {}, \"queries\": {}, \"rows\": {}, \"wall_ms\": {:.2}, \
         \"qps\": {:.0}, \"merged\": {{ \"pages\": {} }}, \"hot_shard\": {{ \"pages\": {} }} }}",
        p.shards, p.queries, p.rows, p.wall_ms, p.qps, p.merged_pages, p.hot_shard_pages
    )
}

fn reseed_cost_json(c: &asr_bench::serving::ReseedCost) -> String {
    // `deliveries`/`bytes_shipped`/`pages` are deterministic (lossless
    // reseed links, exact page model) and trend-gated.
    format!(
        "{{ \"deliveries\": {}, \"bytes_shipped\": {}, \"pages\": {}, \
         \"ticks_to_recover\": {} }}",
        c.deliveries, c.bytes, c.pages, c.ticks_to_recover
    )
}

fn serving_json(b: &ServingBench) -> String {
    let points = b
        .points
        .iter()
        .map(serving_point_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let c = &b.chaos;
    let a = &b.availability;
    format!(
        "{{\n    \"workload\": \"full-path fw+bw span scatter-gather on a 48/96/192/384 chain, \
         full/binary ASR, fleet seeded via replication\",\n    \"points\": [\n{points}\n    ],\n    \
         \"chaos\": {{ \"seed\": {}, \"shards\": 2, \"queries\": {}, \"retries\": {}, \
         \"injected_faults\": {}, \"latency_ms\": {{ \"p50\": {:.3}, \"p95\": {:.3}, \
         \"p99\": {:.3} }} }},\n    \
         \"availability\": {{ \"shards\": {}, \"outage_queries\": {}, \"degraded_queries\": {}, \
         \"degraded_rows\": {}, \"healthy_rows\": {}, \"reseed\": {{ \"delta\": {}, \
         \"full\": {}, \"delta_full_page_ratio\": {:.4} }} }}\n  }}",
        c.seed,
        c.queries,
        c.retries,
        c.injected,
        c.p50_ms,
        c.p95_ms,
        c.p99_ms,
        a.shards,
        a.outage_queries,
        a.degraded_queries,
        a.degraded_rows,
        a.healthy_rows,
        reseed_cost_json(&a.delta_reseed),
        reseed_cost_json(&a.full_reseed),
        a.delta_reseed.pages as f64 / a.full_reseed.pages.max(1) as f64,
    )
}

fn write_point_json(p: &WritePoint) -> String {
    // `fsyncs` and `fsyncs_per_op` are deterministic (one modeled fsync
    // per full group) and trend-gated; wall-clock is informational.
    format!(
        "      {{ \"sessions\": {}, \"commits\": {}, \"records\": {}, \"fsyncs\": {}, \
         \"fsyncs_per_op\": {:.4}, \"wall_ms\": {:.2} }}",
        p.sessions,
        p.commits,
        p.records,
        p.fsyncs,
        p.fsyncs_per_op(),
        p.wall_ms
    )
}

fn read_point_json(p: &ReadPoint, cpus: usize) -> String {
    // Row totals are deterministic (every reader answers from the same
    // pinned epoch); wall/qps are host-dependent.  On a single-CPU
    // container aggregate qps cannot scale with reader count, so it is
    // reported as `null` there — the same honesty rule as
    // `speedup_jobs4`.
    let qps = if cpus < 2 {
        "null".to_string()
    } else {
        format!("{:.0}", p.qps)
    };
    format!(
        "      {{ \"readers\": {}, \"queries\": {}, \"rows\": {}, \"writer_commits\": {}, \
         \"wall_ms\": {:.2}, \"qps\": {qps} }}",
        p.readers, p.queries, p.rows, p.writer_commits, p.wall_ms
    )
}

fn concurrency_json(b: &ConcurrencyBench, cpus: usize) -> String {
    let write = b
        .write_points
        .iter()
        .map(write_point_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let read = b
        .read_points
        .iter()
        .map(|p| read_point_json(p, cpus))
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n    \"workload\": \"group-commit ins-leaf commits and pinned-snapshot span sweeps \
         on the 12/24/48/96 chain, full/binary ASR, sessions/readers 1-8\",\n    \
         \"write\": [\n{write}\n    ],\n    \"read\": [\n{read}\n    ]\n  }}"
    )
}

fn io_json(io: &MeasuredIo) -> String {
    format!(
        "{{ \"page_reads\": {}, \"page_writes\": {}, \"batch_probes\": {}, \
         \"batch_pages_saved\": {} }}",
        io.reads, io.writes, io.batch_probes, io.batch_pages_saved
    )
}

/// Whole-chain backward queries through a full/binary ASR on the scaled
/// fig6 population — the supported-query regime Figure 6 prices.
fn measure_fig6_queries() -> MeasuredIo {
    let scaled = scale_profile(&profiles::fig6_profile().profile, SCALE);
    let n = scaled.n;
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    let mut g = generate(&spec, 1);
    let m = g.path.arity(false) - 1;
    let id =
        g.db.create_asr(
            g.path.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    let mix = Mix::new(vec![(1.0, Op::bw(0, n))], vec![], 0.0);
    let trace = generate_trace(&g, &mix, QUERY_COUNT, 2);
    g.db.stats().reset();
    let before = g.db.stats().snapshot();
    let path = g.path.clone();
    execute_trace(&mut g.db, Some(id), &path, &trace);
    delta(&before, &g.db.stats().snapshot())
}

/// `ins_3` updates maintaining a full/binary ASR on the scaled fig11
/// population — the update regime Figure 11 prices.
fn measure_fig11_updates() -> MeasuredIo {
    let scaled = scale_profile(&profiles::fig11_profile().profile, SCALE);
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    let mut g = generate(&spec, 3);
    let m = g.path.arity(false) - 1;
    let id =
        g.db.create_asr(
            g.path.clone(),
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(m),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    let mix = Mix::new(vec![], vec![(1.0, Op::ins(3))], 1.0);
    let trace = generate_trace(&g, &mix, UPDATE_COUNT, 4);
    g.db.stats().reset();
    let before = g.db.stats().snapshot();
    let path = g.path.clone();
    execute_trace(&mut g.db, Some(id), &path, &trace);
    delta(&before, &g.db.stats().snapshot())
}

fn delta(before: &asr_pagesim::IoSnapshot, after: &asr_pagesim::IoSnapshot) -> MeasuredIo {
    MeasuredIo {
        reads: after.reads - before.reads,
        writes: after.writes - before.writes,
        batch_probes: after.batch_probes - before.batch_probes,
        batch_pages_saved: after.batch_pages_saved - before.batch_pages_saved,
    }
}
