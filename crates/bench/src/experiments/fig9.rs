//! Figure 9 — an application favouring canonical/left over full/right
//! (Section 5.9.4).
//!
//! 400 000 objects per type with very few defined attributes on the left
//! (`d_0 = 10`) and many on the right (`d_3 = 10⁵`), fan-out swept over
//! 10 … 100.  Because hardly any path originates in `t_0`, the canonical
//! and left-complete extensions stay tiny while full and right-complete
//! blow up — and the backward query `Q_{0,4}(bw)` is correspondingly much
//! cheaper on the small extensions.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut cost_table = Table::new(
        "Figure 9: Q_{0,4}(bw) page accesses vs fan-out (binary decomposition)",
        &["fan", "canonical", "left", "full", "right", "no support"],
    );
    let mut size_table = Table::new(
        "Figure 9 (context): relation sizes in bytes at each fan-out",
        &["fan", "canonical", "left", "full", "right"],
    );
    for fan in [10.0, 25.0, 50.0, 75.0, 100.0] {
        let model = profiles::fig9_profile(fan);
        let n = model.n();
        let dec = Dec::binary(n);
        cost_table.row(vec![
            fmt(fan),
            fmt(model.qsup_bw(Ext::Canonical, 0, n, &dec)),
            fmt(model.qsup_bw(Ext::Left, 0, n, &dec)),
            fmt(model.qsup_bw(Ext::Full, 0, n, &dec)),
            fmt(model.qsup_bw(Ext::Right, 0, n, &dec)),
            fmt(model.qnas_bw(0, n)),
        ]);
        size_table.row(vec![
            fmt(fan),
            fmt(model.total_bytes(Ext::Canonical, &dec)),
            fmt(model.total_bytes(Ext::Left, &dec)),
            fmt(model.total_bytes(Ext::Full, &dec)),
            fmt(model.total_bytes(Ext::Right, &dec)),
        ]);
    }
    out.push(cost_table);
    out.push(size_table);

    let m = profiles::fig9_profile(100.0);
    let dec = Dec::binary(m.n());
    out.note(format!(
        "at fan = 100: left ({} bytes) vs right ({} bytes) — the profile indeed \
         favours canonical/left by {}x in storage",
        fmt(m.total_bytes(Ext::Left, &dec)),
        fmt(m.total_bytes(Ext::Right, &dec)),
        fmt(m.total_bytes(Ext::Right, &dec) / m.total_bytes(Ext::Left, &dec).max(1.0))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_favours_canonical_left() {
        for fan in [10.0, 100.0] {
            let m = profiles::fig9_profile(fan);
            let dec = Dec::binary(m.n());
            assert!(
                m.total_bytes(Ext::Left, &dec) < m.total_bytes(Ext::Right, &dec),
                "fan={fan}"
            );
            assert!(
                m.total_bytes(Ext::Canonical, &dec) < m.total_bytes(Ext::Full, &dec),
                "fan={fan}"
            );
        }
        assert_eq!(run().tables.len(), 2);
    }
}
