//! Figure 8 — which queries are supported: `Q_{0,3}(bw)` (Section 5.9.3).
//!
//! An *interior-span* backward query (it stops one step short of `t_n`)
//! on a dense 10⁴-objects-per-type profile, sweeping `d_i`.  Only the
//! left-complete and full extensions can evaluate it at all (formula 35);
//! canonical and right-complete fall back to the unsupported cost.
//! Paper's claim: under **no decomposition** the full/left evaluation must
//! exhaustively scan the large relation and ends up *costlier than no
//! support*, while the binary decomposition restores the advantage.

use asr_costmodel::{profiles, Dec, Ext, QueryKind};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        "Figure 8: Q_{0,3}(bw) page accesses (supported = full/left only)",
        &[
            "d_i",
            "full (no dec)",
            "left (no dec)",
            "full (binary)",
            "left (binary)",
            "no support",
        ],
    );
    for d in [10.0, 100.0, 1000.0, 2500.0, 5000.0, 7500.0, 10_000.0] {
        let model = profiles::fig8_profile(d);
        let none = Dec::none(model.n());
        let binary = Dec::binary(model.n());
        table.row(vec![
            fmt(d),
            fmt(model.q(Ext::Full, QueryKind::Backward, 0, 3, &none)),
            fmt(model.q(Ext::Left, QueryKind::Backward, 0, 3, &none)),
            fmt(model.q(Ext::Full, QueryKind::Backward, 0, 3, &binary)),
            fmt(model.q(Ext::Left, QueryKind::Backward, 0, 3, &binary)),
            fmt(model.qnas_bw(0, 3)),
        ]);
    }
    out.push(table);

    let dense = profiles::fig8_profile(10_000.0);
    let nosup = dense.qnas_bw(0, 3);
    let full_none = dense.q(Ext::Full, QueryKind::Backward, 0, 3, &Dec::none(4));
    out.note(format!(
        "dense end: non-decomposed full costs {} vs no-support {} — the exhaustive \
         relation scan loses, exactly as the paper reports",
        fmt(full_none),
        fmt(nosup)
    ));
    out.note("canonical and right-complete cannot evaluate Q_{0,3} at all (formula 35)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_end_inverts_and_binary_repairs() {
        let dense = profiles::fig8_profile(10_000.0);
        let nosup = dense.qnas_bw(0, 3);
        assert!(dense.q(Ext::Full, QueryKind::Backward, 0, 3, &Dec::none(4)) > nosup);
        assert!(dense.q(Ext::Left, QueryKind::Backward, 0, 3, &Dec::none(4)) > nosup);
        assert!(dense.q(Ext::Full, QueryKind::Backward, 0, 3, &Dec::binary(4)) < nosup);
        // Unsupported extensions equal the baseline.
        assert_eq!(
            dense.q(Ext::Canonical, QueryKind::Backward, 0, 3, &Dec::binary(4)),
            nosup
        );
        assert_eq!(
            dense.q(Ext::Right, QueryKind::Backward, 0, 3, &Dec::binary(4)),
            nosup
        );
        assert_eq!(run().tables[0].len(), 7);
    }
}
