//! Figure 4 — comparison of access relation sizes (Section 4.4.1).
//!
//! Storage bytes (non-redundant representation) for the four extensions
//! under no decomposition and binary decomposition, on the paper's fixed
//! engineering profile.  Paper's claims: canonical and left-complete are
//! drastically smaller than right-complete and full ("few objects at the
//! left side of the path"), and the binary decomposition reduces storage
//! by about a factor of 2.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let model = profiles::fig4_profile();
    let n = model.n();
    let mut out = ExperimentOutput::default();

    let mut table = Table::new(
        "Figure 4: access relation sizes (bytes)",
        &[
            "extension",
            "no decomposition",
            "binary decomposition",
            "reduction",
        ],
    );
    let mut sizes = std::collections::HashMap::new();
    for ext in Ext::ALL {
        let none = model.total_bytes(ext, &Dec::none(n));
        let binary = model.total_bytes(ext, &Dec::binary(n));
        sizes.insert(ext.name(), (none, binary));
        table.row(vec![
            ext.name().to_string(),
            fmt(none),
            fmt(binary),
            format!("{:.2}x", none / binary),
        ]);
    }
    out.push(table);

    let (can, _) = sizes["canonical"];
    let (left, _) = sizes["left"];
    let (right, _) = sizes["right"];
    let (full, _) = sizes["full"];
    out.note(format!(
        "ordering: canonical ({}) < left ({}) << right ({}) <= full ({})",
        fmt(can),
        fmt(left),
        fmt(right),
        fmt(full)
    ));
    out.note(format!(
        "right/left ratio = {:.1}x (paper: 'drastically smaller')",
        right / left
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_rows_and_the_papers_ordering() {
        let out = run();
        assert_eq!(out.tables[0].len(), 4);
        assert!(out.notes.iter().any(|n| n.contains("ordering")));
    }
}
