//! Figure 7 — query costs under varying object size (Section 5.9.2).
//!
//! `size_i` is swept over 100 … 800 for all types (binary decomposition).
//! Paper's claims: supported query costs are *independent* of object size
//! (the full/left/right curves overlap); only the unsupported cost grows
//! proportionally with object size.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        "Figure 7: Q_{0,4}(bw) vs object size (binary decomposition)",
        &["size", "canonical", "full", "left", "right", "no support"],
    );
    let mut nosup_first = 0.0;
    let mut nosup_last = 0.0;
    for step in 0..8 {
        let size = 100.0 + step as f64 * 100.0;
        let model = profiles::fig7_profile(size);
        let n = model.n();
        let dec = Dec::binary(n);
        let nosup = model.qnas_bw(0, n);
        if step == 0 {
            nosup_first = nosup;
        }
        nosup_last = nosup;
        table.row(vec![
            fmt(size),
            fmt(model.qsup_bw(Ext::Canonical, 0, n, &dec)),
            fmt(model.qsup_bw(Ext::Full, 0, n, &dec)),
            fmt(model.qsup_bw(Ext::Left, 0, n, &dec)),
            fmt(model.qsup_bw(Ext::Right, 0, n, &dec)),
            fmt(nosup),
        ]);
    }
    out.push(table);
    out.note("supported costs are constant across object sizes (columns identical)");
    out.note(format!(
        "unsupported cost grows with object size: {} -> {} ({}x)",
        fmt(nosup_first),
        fmt(nosup_last),
        fmt(nosup_last / nosup_first)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_is_size_independent() {
        for ext in Ext::ALL {
            let small = profiles::fig7_profile(100.0);
            let large = profiles::fig7_profile(800.0);
            assert_eq!(
                small.qsup_bw(ext, 0, 4, &Dec::binary(4)),
                large.qsup_bw(ext, 0, 4, &Dec::binary(4)),
                "{ext}"
            );
        }
        assert!(
            profiles::fig7_profile(800.0).qnas_bw(0, 4)
                > profiles::fig7_profile(100.0).qnas_bw(0, 4)
        );
        assert_eq!(run().tables[0].len(), 8);
    }
}
