//! The per-figure experiments.
//!
//! Each module regenerates one figure of the paper's evaluation: it
//! evaluates the analytical cost model on the paper's application profile,
//! prints the series the figure plots, and (for the figures whose claims
//! are checkable at laptop scale) cross-checks the *shape* against
//! measured page accesses on a generated database.

pub mod ablation;
pub mod design;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod validate;

use std::path::Path;

use asr_pagesim::IoSnapshot;

use crate::table::Table;

/// A finished experiment: its rendered tables plus free-form notes.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Tables, printed and saved as CSV.
    pub tables: Vec<Table>,
    /// Shape observations ("who wins, by what factor").
    pub notes: Vec<String>,
    /// Modeled page I/O this experiment performed against a real
    /// generated database (zero for purely analytic figures).  Runners
    /// count into a private, worker-local [`asr_pagesim::IoStats`] and
    /// export the plain snapshot here; the harness folds the shards into
    /// one aggregate when the worker scope joins.
    pub io: IoSnapshot,
}

impl ExperimentOutput {
    /// Append a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Append an observation line.
    pub fn note(&mut self, msg: impl Into<String>) {
        self.notes.push(msg.into());
    }

    /// Print to stdout and save CSVs under `dir/<name>_<index>.csv`.
    pub fn emit(&self, name: &str, dir: Option<&Path>) {
        for (i, table) in self.tables.iter().enumerate() {
            println!("{}", table.render());
            if let Some(dir) = dir {
                let file = if self.tables.len() == 1 {
                    name.to_string()
                } else {
                    format!("{name}_{i}")
                };
                if let Err(e) = table.save_csv(dir, &file) {
                    eprintln!("warning: could not save {file}.csv: {e}");
                }
            }
        }
        for note in &self.notes {
            println!("note: {note}");
        }
        println!();
    }
}

/// One registry entry: `(id, description, runner)`.
pub type ExperimentEntry = (&'static str, &'static str, fn() -> ExperimentOutput);

/// Run every entry on a pool of `jobs` worker threads, returning
/// `(output, elapsed_ms)` per entry **in input order**.
///
/// Convenience wrapper over [`run_entries_sharded`] that discards the
/// merged I/O aggregate.
pub fn run_entries(entries: &[ExperimentEntry], jobs: usize) -> Vec<(ExperimentOutput, f64)> {
    run_entries_sharded(entries, jobs).0
}

/// Expected relative cost of a figure runner (measured release-build
/// wall milliseconds, rounded).  Only the *ordering* matters: the
/// scheduler runs heavy figures first so a straggler never starts last.
/// Unknown ids weigh 0 and keep their input order at the tail.
fn cost_hint(id: &str) -> u64 {
    match id {
        "validate" => 950,
        "ablation" => 190,
        "design" => 57,
        "fig15" => 23,
        "fig14" => 22,
        "fig17" => 21,
        "fig16" => 1,
        _ => 0,
    }
}

/// Longest-processing-time-first schedule: deal the entries (heaviest
/// first) onto `workers` queues, always onto the least-loaded queue.
/// Returns one run queue of entry indices per worker.
fn lpt_schedule(entries: &[ExperimentEntry], workers: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..entries.len()).collect();
    // Stable sort: equal-weight figures keep their registry order.
    order.sort_by_key(|&i| std::cmp::Reverse(cost_hint(entries[i].0)));
    let mut queues = vec![Vec::new(); workers];
    let mut loads = vec![0u64; workers];
    for i in order {
        let w = (0..workers).min_by_key(|&w| loads[w]).expect(">= 1 worker");
        loads[w] += cost_hint(entries[i].0).max(1);
        queues[w].push(i);
    }
    queues
}

/// Run every entry on a pool of `jobs` worker threads, returning
/// `(output, elapsed_ms)` per entry **in input order** plus the merged
/// page-I/O aggregate across all figures.
///
/// Scheduling is longest-first work-stealing: entries are dealt onto
/// per-worker queues heaviest-first ([`lpt_schedule`], weights from
/// measured runner costs), so the expensive figures (`validate`,
/// `ablation`, `design` — which the registry happens to list *last*)
/// start immediately instead of serializing behind a tail of trivial
/// ones.  A worker that drains its own queue steals from the back of the
/// longest remaining queue, so a bad estimate costs balance, never
/// idleness.  Every runner builds its own database and
/// [`asr_pagesim::IoStats`] counter (the stats handle is an `Rc` and
/// never crosses threads), so the hot counting path stays `Cell`-based
/// with no atomics or locks.  Each worker folds the figures it ran into
/// a private [`IoSnapshot`] shard; shards are merged into the shared
/// aggregate exactly once per worker, under the mutex, when that worker
/// exits — merging on scope join rather than per figure keeps lock
/// traffic off the measurement path.  Nothing is printed or written
/// here, which keeps downstream emission deterministic regardless of
/// `jobs`.
pub fn run_entries_sharded(
    entries: &[ExperimentEntry],
    jobs: usize,
) -> (Vec<(ExperimentOutput, f64)>, IoSnapshot) {
    use std::sync::Mutex;
    use std::time::Instant;

    let workers = jobs.max(1).min(entries.len().max(1));
    let queues: Vec<Mutex<Vec<usize>>> = lpt_schedule(entries, workers)
        .into_iter()
        .map(Mutex::new)
        .collect();
    let aggregate = Mutex::new(IoSnapshot::default());
    let results: Vec<Mutex<Option<(ExperimentOutput, f64)>>> =
        entries.iter().map(|_| Mutex::new(None)).collect();
    // Claim the next index for worker `me`: the front of its own queue,
    // else stolen from the back of the longest remaining queue.
    let claim = |me: usize| -> Option<usize> {
        {
            let mut own = queues[me].lock().expect("queue poisoned");
            if !own.is_empty() {
                return Some(own.remove(0));
            }
        }
        let victim = (0..queues.len())
            .filter(|&w| w != me)
            .max_by_key(|&w| queues[w].lock().expect("queue poisoned").len())?;
        queues[victim].lock().expect("queue poisoned").pop()
    };
    std::thread::scope(|s| {
        for me in 0..workers {
            let claim = &claim;
            let aggregate = &aggregate;
            let results = &results;
            s.spawn(move || {
                let mut shard = IoSnapshot::default();
                while let Some(i) = claim(me) {
                    let (_, _, runner) = &entries[i];
                    let started = Instant::now();
                    let output = runner();
                    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
                    shard.merge(&output.io);
                    *results[i].lock().expect("result slot poisoned") = Some((output, elapsed_ms));
                }
                aggregate.lock().expect("aggregate poisoned").merge(&shard);
            });
        }
    });
    let outputs = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool finished every figure")
        })
        .collect();
    let io = *aggregate.lock().expect("aggregate poisoned");
    (outputs, io)
}

/// The registry of all experiments.
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        (
            "fig4",
            "storage size by extension and decomposition (Sec 4.4.1)",
            fig4::run,
        ),
        (
            "fig5",
            "storage size while varying d_i (Sec 4.4.2)",
            fig5::run,
        ),
        (
            "fig6",
            "backward query Q_{0,4}(bw) cost (Sec 5.9.1)",
            fig6::run,
        ),
        (
            "fig7",
            "query cost under varying object size (Sec 5.9.2)",
            fig7::run,
        ),
        (
            "fig8",
            "which queries are supported: Q_{0,3}(bw) (Sec 5.9.3)",
            fig8::run,
        ),
        (
            "fig9",
            "canonical/left vs full/right profile (Sec 5.9.4)",
            fig9::run,
        ),
        ("fig11", "update cost for ins_3 (Sec 6.3.1)", fig11::run),
        (
            "fig12",
            "update cost, modified fan profile (Sec 6.3.2)",
            fig12::run,
        ),
        (
            "fig13",
            "update cost under varying object size (Sec 6.3.3)",
            fig13::run,
        ),
        (
            "fig14",
            "operation mix, binary decomposition (Sec 6.4.2)",
            fig14::run,
        ),
        (
            "fig15",
            "operation mix, decomposition (0,3,4) (Sec 6.4.3)",
            fig15::run,
        ),
        (
            "fig16",
            "left-complete vs full, n = 5 (Sec 6.4.4)",
            fig16::run,
        ),
        (
            "fig17",
            "right-complete vs full, n = 5 (Sec 6.4.5)",
            fig17::run,
        ),
        (
            "validate",
            "empirical page counts vs analytical predictions",
            validate::run,
        ),
        (
            "ablation",
            "ASR advantage under LRU buffer pools (extension)",
            ablation::run,
        ),
        ("design", "physical-design optimizer (Sec 7)", design::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_schedule_partitions_and_fronts_the_heavy_figures() {
        let entries = registry();
        for workers in [1usize, 2, 4, 7] {
            let queues = lpt_schedule(&entries, workers);
            assert_eq!(queues.len(), workers);
            // A partition: every index exactly once.
            let mut seen: Vec<usize> = queues.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..entries.len()).collect::<Vec<_>>());
            // The heaviest figure heads a queue — it is never scheduled
            // behind anything, so the straggler starts at t = 0.
            let validate = entries
                .iter()
                .position(|(id, _, _)| *id == "validate")
                .expect("validate is registered");
            assert!(
                queues.iter().any(|q| q.first() == Some(&validate)),
                "workers={workers}: the heaviest figure must start first"
            );
        }
    }

    #[test]
    fn lpt_schedule_balances_hinted_load() {
        let entries = registry();
        let queues = lpt_schedule(&entries, 4);
        // `validate` dominates the total; LPT must isolate it rather than
        // pairing it with the other heavy runners.
        let loads: Vec<u64> = queues
            .iter()
            .map(|q| q.iter().map(|&i| cost_hint(entries[i].0)).sum())
            .collect();
        let heaviest = *loads.iter().max().expect("4 queues");
        assert_eq!(
            heaviest,
            cost_hint("validate"),
            "the heaviest queue must hold only the dominant figure: {loads:?}"
        );
    }
}
