//! Figure 17 — right-complete vs full extension, n = 5 (Section 6.4.5).
//!
//! The terminal-anchored mix
//! `Q = {½ Q_{0,5}(bw), ¼ Q_{1,5}(bw), ¼ Q_{2,5}(bw)}`, `U = {ins_3}` on
//! a profile whose population *shrinks* towards `t_n`.  Paper's claims:
//! the decomposition `(0,3,5)` is always superior to binary, and the
//! right-complete extension beats full only below `P_up ≈ 0.005`.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let model = profiles::fig17_profile();
    let dbin = Dec::binary(5);
    let d035 = Dec(vec![0, 3, 5]);
    let mut out = ExperimentOutput::default();

    // Fine sweep near zero to expose the tiny break-even, then coarse.
    let mut table = Table::new(
        "Figure 17: right vs full, n = 5 (cost/op)",
        &[
            "P_up",
            "right (0,3,5)",
            "full (0,3,5)",
            "right binary",
            "full binary",
        ],
    );
    let p_ups = [0.0005, 0.001, 0.002, 0.005, 0.01, 0.05, 0.1, 0.3, 0.5];
    for &p_up in &p_ups {
        let mix = profiles::fig17_mix(p_up);
        table.row(vec![
            format!("{p_up}"),
            fmt(model.mix_cost(Ext::Right, &d035, &mix)),
            fmt(model.mix_cost(Ext::Full, &d035, &mix)),
            fmt(model.mix_cost(Ext::Right, &dbin, &mix)),
            fmt(model.mix_cost(Ext::Full, &dbin, &mix)),
        ]);
    }
    out.push(table);

    // Locate the right-vs-full break-even under (0,3,5).
    let mut break_even = None;
    for step in 0..=10_000 {
        let p_up = step as f64 / 100_000.0;
        let mix = profiles::fig17_mix(p_up);
        if model.mix_cost(Ext::Right, &d035, &mix) >= model.mix_cost(Ext::Full, &d035, &mix) {
            break_even = Some(p_up);
            break;
        }
    }
    match break_even {
        Some(p) => out.note(format!(
            "right beats full only below P_up ≈ {p:.4} (paper: ≈ 0.005)"
        )),
        None => out.note("right never overtakes full in the scanned range".to_string()),
    }
    out.note("(0,3,5) is superior to the binary decomposition at every operating point");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_is_tiny_and_035_dominates() {
        let model = profiles::fig17_profile();
        let d035 = Dec(vec![0, 3, 5]);
        let dbin = Dec::binary(5);
        let low = profiles::fig17_mix(0.001);
        assert!(model.mix_cost(Ext::Right, &d035, &low) < model.mix_cost(Ext::Full, &d035, &low));
        let high = profiles::fig17_mix(0.05);
        assert!(model.mix_cost(Ext::Full, &d035, &high) < model.mix_cost(Ext::Right, &d035, &high));
        for p_up in [0.001, 0.05, 0.3] {
            let mix = profiles::fig17_mix(p_up);
            for ext in [Ext::Right, Ext::Full] {
                assert!(
                    model.mix_cost(ext, &d035, &mix) <= model.mix_cost(ext, &dbin, &mix),
                    "{ext} P_up={p_up}"
                );
            }
        }
        assert_eq!(run().tables[0].len(), 9);
    }
}
