//! Ablation: does the access-support advantage survive a warm buffer
//! pool?
//!
//! The paper's cost model charges every page access to secondary storage
//! (no buffering) — a fair assumption for 1990 main-memory sizes, but the
//! obvious modern objection is that an LRU buffer might erase the
//! difference.  This experiment replays the same backward-query workload
//! under increasing buffer capacities, unindexed vs full-extension ASR,
//! and reports *disk* page accesses (buffer hits are free).
//!
//! Expected shape: the naive evaluation touches the whole multi-level
//! working set (hundreds of pages), so small buffers barely help it,
//! while the ASR's handful of B+ tree pages become fully resident almost
//! immediately — the advantage *grows* before it shrinks, and only an
//! impractically large buffer closes the gap.

use asr_core::{AsrConfig, Decomposition, Extension};
use asr_costmodel::{Mix, Op};
use asr_pagesim::IoSnapshot;
use asr_workload::{execute_trace, generate, generate_trace, GeneratorSpec};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

fn spec() -> GeneratorSpec {
    GeneratorSpec {
        counts: vec![40, 200, 400, 2000, 4000],
        defined: vec![36, 160, 320, 800],
        fan: vec![2, 2, 3, 4],
        sizes: vec![500, 400, 300, 300, 100],
    }
}

const BUFFER_SIZES: [usize; 5] = [0, 8, 32, 128, 1024];
const OPS: usize = 40;

fn measure(buffer_pages: usize, indexed: bool, io: &mut IoSnapshot) -> f64 {
    let mut g = generate(&spec(), 77);
    let mix = Mix::new(vec![(1.0, Op::bw(0, 4))], vec![], 0.0);
    let id = if indexed {
        let m = g.path.arity(false) - 1;
        Some(
            g.db.create_asr(
                g.path.clone(),
                AsrConfig {
                    extension: Extension::Full,
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .expect("ASR builds"),
        )
    } else {
        None
    };
    g.db.enable_buffering(buffer_pages, buffer_pages);
    let trace = generate_trace(&g, &mix, OPS, 5);
    g.db.stats().reset();
    let path = g.path.clone();
    let mean = execute_trace(&mut g.db, id, &path, &trace).mean_cost();
    io.merge(&g.db.stats().snapshot());
    mean
}

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        "ablation: Q_{0,4}(bw) disk accesses/op under LRU buffering",
        &["buffer pages", "naive", "full ASR", "advantage"],
    );
    let mut first_adv = 0.0;
    let mut last_naive = 0.0;
    for pages in BUFFER_SIZES {
        let naive = measure(pages, false, &mut out.io);
        let asr = measure(pages, true, &mut out.io);
        let adv = naive / asr.max(f64::EPSILON);
        if pages == 0 {
            first_adv = adv;
        }
        last_naive = naive;
        table.row(vec![
            pages.to_string(),
            fmt(naive),
            fmt(asr),
            format!("{adv:.1}x"),
        ]);
    }
    out.push(table);
    out.note(format!(
        "unbuffered advantage {first_adv:.1}x; even at 1024 buffered pages per file the \
         naive evaluation still pays {last_naive:.1} disk accesses/op on cold paths"
    ));
    out.note("the paper's no-buffer assumption is conservative for the ASR, not against it");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asr_advantage_survives_moderate_buffers() {
        // Small-scale version of the experiment.
        let mut io = IoSnapshot::default();
        for pages in [0usize, 32] {
            let naive = measure(pages, false, &mut io);
            let asr = measure(pages, true, &mut io);
            assert!(
                asr * 2.0 < naive,
                "buffer={pages}: ASR {asr:.1}/op must stay well below naive {naive:.1}/op"
            );
        }
        assert!(io.accesses() > 0, "measurement must count real page I/O");
    }

    #[test]
    fn buffering_reduces_disk_accesses_monotonically_for_naive() {
        let mut io = IoSnapshot::default();
        let unbuffered = measure(0, false, &mut io);
        let buffered = measure(1024, false, &mut io);
        assert!(buffered < unbuffered, "{buffered} !< {unbuffered}");
    }
}
