//! Figure 11 — update costs for a fixed application profile
//! (Section 6.3.1).
//!
//! Cost of the update `ins_3` (an insertion at the right-hand end of the
//! path) for every extension under binary and no decomposition.  Paper's
//! claims: the left-complete extension under binary decomposition is
//! "very much superior" to right-complete; for `ins_0` the ordering
//! reverses; canonical is problematic under any update because it always
//! needs a search in the data.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let model = profiles::fig11_profile();
    let n = model.n();
    let mut out = ExperimentOutput::default();

    let mut table = Table::new(
        "Figure 11: ins_3 update cost (page accesses)",
        &["extension", "binary dec", "no dec", "search share (binary)"],
    );
    for ext in Ext::ALL {
        let binary = model.update_cost(ext, 3, &Dec::binary(n));
        let none = model.update_cost(ext, 3, &Dec::none(n));
        let search = model.search_cost(ext, 3, &Dec::binary(n));
        table.row(vec![
            ext.name().to_string(),
            fmt(binary),
            fmt(none),
            format!("{:.0}%", 100.0 * search / binary),
        ]);
    }
    out.push(table);

    // The paper's contrast: ins_0 flips left and right.
    let mut flip = Table::new(
        "Figure 11 (context): ins_0 flips the ordering",
        &["extension", "ins_0 (binary)", "ins_3 (binary)"],
    );
    for ext in Ext::ALL {
        flip.row(vec![
            ext.name().to_string(),
            fmt(model.update_cost(ext, 0, &Dec::binary(n))),
            fmt(model.update_cost(ext, 3, &Dec::binary(n))),
        ]);
    }
    out.push(flip);

    let left3 = model.update_cost(Ext::Left, 3, &Dec::binary(n));
    let right3 = model.update_cost(Ext::Right, 3, &Dec::binary(n));
    out.note(format!(
        "ins_3: left ({}) is {:.1}x cheaper than right ({})",
        fmt(left3),
        right3 / left3,
        fmt(right3)
    ));
    let left0 = model.update_cost(Ext::Left, 0, &Dec::binary(n));
    let right0 = model.update_cost(Ext::Right, 0, &Dec::binary(n));
    out.note(format!(
        "ins_0: right ({}) beats left ({}) — 'drastically better', as the paper says",
        fmt(right0),
        fmt(left0)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_beats_right_for_ins3_and_flips_for_ins0() {
        let m = profiles::fig11_profile();
        let dec = Dec::binary(4);
        assert!(m.update_cost(Ext::Left, 3, &dec) * 2.0 < m.update_cost(Ext::Right, 3, &dec));
        assert!(m.update_cost(Ext::Right, 0, &dec) < m.update_cost(Ext::Left, 0, &dec));
        // Canonical pays searches for every position.
        for i in 0..4 {
            assert!(m.search_cost(Ext::Canonical, i, &dec) > 0.0, "ins_{i}");
        }
        assert_eq!(run().tables.len(), 2);
    }
}
