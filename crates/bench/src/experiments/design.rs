//! The physical-design optimizer (Section 7).
//!
//! "It is not possible to generally determine the best possible design
//! choices: this is highly application dependent" — so the paper's closing
//! argument is that the cost model should *drive* physical design.  This
//! experiment runs the optimizer over the paper's three operation mixes
//! and prints the winning extension × decomposition at several update
//! probabilities, plus the full ranking at one operating point each.

use asr_costmodel::design::rank_designs;
use asr_costmodel::{best_design, profiles, CostModel, Mix};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::default();

    type Scenario = (&'static str, CostModel, fn(f64) -> Mix);
    let scenarios: Vec<Scenario> = vec![
        (
            "Sec 6.4.2 mix (n=4)",
            profiles::fig14_profile(),
            profiles::fig14_mix,
        ),
        (
            "Sec 6.4.4 mix (n=5, anchored)",
            profiles::fig16_profile(),
            profiles::fig16_mix,
        ),
        (
            "Sec 6.4.5 mix (n=5, terminal)",
            profiles::fig17_profile(),
            profiles::fig17_mix,
        ),
    ];

    for (name, model, mk_mix) in &scenarios {
        let mut table = Table::new(
            format!("optimizer: best design for {name}"),
            &["P_up", "best design", "cost/op", "vs no support"],
        );
        for p_up in [0.001, 0.01, 0.1, 0.3, 0.5, 0.9] {
            let mix = mk_mix(p_up);
            let best = best_design(model, &mix);
            let baseline = model.mix_cost_nosupport(&mix);
            table.row(vec![
                format!("{p_up}"),
                best.label(),
                fmt(best.cost),
                format!("{:.3}", best.cost / baseline.max(f64::EPSILON)),
            ]);
        }
        out.push(table);
    }

    // One full ranking for the flagship mix.
    let model = profiles::fig14_profile();
    let mix = profiles::fig14_mix(0.3);
    let ranked = rank_designs(&model, &mix);
    let mut table = Table::new(
        "optimizer: full ranking, Sec 6.4.2 mix at P_up = 0.3 (top 10)",
        &["rank", "design", "cost/op", "storage bytes"],
    );
    for (i, choice) in ranked.iter().take(10).enumerate() {
        table.row(vec![
            format!("{}", i + 1),
            choice.label(),
            fmt(choice.cost),
            fmt(choice.storage_bytes),
        ]);
    }
    out.push(table);
    out.note("the optimizer independently rediscovers the paper's (0,3,4)/(0,3,5)-style cuts");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizer_output_is_complete() {
        let out = run();
        assert_eq!(out.tables.len(), 4);
        for t in &out.tables[..3] {
            assert_eq!(t.len(), 6);
        }
        assert_eq!(out.tables[3].len(), 10);
    }
}
