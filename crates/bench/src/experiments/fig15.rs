//! Figure 15 — the Figure 14 mix under the decomposition `(0, 3, 4)`
//! (Section 6.4.3).
//!
//! The experiment of Figure 14 rerun with a non-binary decomposition that
//! keeps a wide `[S_0 … S_3]` partition plus the terminal `[S_3, S_4]`
//! pair — the decomposition our physical-design optimizer independently
//! discovers as superior for this mix (see the `design` experiment).

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::fig14::run_with_dec;
use crate::experiments::ExperimentOutput;
use crate::table::fmt;

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = run_with_dec(
        Dec(vec![0, 3, 4]),
        "Figure 15: operation mix cost/op, decomposition (0,3,4)",
    );
    // Compare against binary at one representative operating point.
    let model = profiles::fig14_profile();
    let mix = profiles::fig14_mix(0.3);
    let d034 = Dec(vec![0, 3, 4]);
    let dbin = Dec::binary(4);
    for ext in [Ext::Left, Ext::Full] {
        out.note(format!(
            "{} at P_up=0.3: (0,3,4) costs {} vs binary {}",
            ext.name(),
            fmt(model.mix_cost(ext, &d034, &mix)),
            fmt(model.mix_cost(ext, &dbin, &mix)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_binary_decomposition_helps_this_mix() {
        let model = profiles::fig14_profile();
        let mix = profiles::fig14_mix(0.3);
        let d034 = Dec(vec![0, 3, 4]);
        let dbin = Dec::binary(4);
        // The mix is dominated by whole-chain and (0,3) queries; fewer
        // partitions mean fewer probes.
        assert!(model.mix_cost(Ext::Left, &d034, &mix) < model.mix_cost(Ext::Left, &dbin, &mix));
        assert_eq!(run().tables[0].len(), 9);
    }
}
