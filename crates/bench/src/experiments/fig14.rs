//! Figure 14 — operation mix under binary decomposition (Section 6.4.2).
//!
//! Expected cost per operation for the mix
//! `Q = {½ Q_{0,4}(bw), ¼ Q_{0,3}(bw), ¼ Q_{1,2}(fw)}`,
//! `U = {½ ins_2, ½ ins_3}` while sweeping the update probability
//! `P_up ∈ 0.1 … 0.9`.  Paper's claims: the left-complete extension beats
//! full at low update probabilities, and the break-even against *no
//! support* sits at an extreme `P_up ≈ 0.998`.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// The decomposition under test; Figure 15 reruns with `(0,3,4)`.
pub fn run_with_dec(dec: Dec, title: &str) -> ExperimentOutput {
    let model = profiles::fig14_profile();
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        title.to_string(),
        &["P_up", "canonical", "full", "left", "right", "no support"],
    );
    for step in 1..=9 {
        let p_up = step as f64 / 10.0;
        let mix = profiles::fig14_mix(p_up);
        table.row(vec![
            format!("{p_up:.1}"),
            fmt(model.mix_cost(Ext::Canonical, &dec, &mix)),
            fmt(model.mix_cost(Ext::Full, &dec, &mix)),
            fmt(model.mix_cost(Ext::Left, &dec, &mix)),
            fmt(model.mix_cost(Ext::Right, &dec, &mix)),
            fmt(model.mix_cost_nosupport(&mix)),
        ]);
    }
    out.push(table);

    // Locate the no-support break-even for the full extension.
    let mut break_even = None;
    for step in 0..=1000 {
        let p_up = step as f64 / 1000.0;
        let mix = profiles::fig14_mix(p_up);
        if model.mix_cost(Ext::Full, &dec, &mix) >= model.mix_cost_nosupport(&mix) {
            break_even = Some(p_up);
            break;
        }
    }
    match break_even {
        Some(p) => out.note(format!(
            "no-support break-even for full at P_up ≈ {p:.3} (paper: 0.998)"
        )),
        None => out.note("full beats no support across the whole P_up range".to_string()),
    }
    let low = profiles::fig14_mix(0.1);
    out.note(format!(
        "at P_up = 0.1: left ({}) vs full ({}) — left ahead, as in the paper's low-P_up regime",
        fmt(model.mix_cost(Ext::Left, &dec, &low)),
        fmt(model.mix_cost(Ext::Full, &dec, &low))
    ));
    out
}

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    run_with_dec(
        Dec::binary(4),
        "Figure 14: operation mix cost/op, binary decomposition",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn break_even_is_extreme() {
        let model = profiles::fig14_profile();
        let dec = Dec::binary(4);
        // Supported clearly wins at P_up = 0.9...
        let mix = profiles::fig14_mix(0.9);
        assert!(model.mix_cost(Ext::Full, &dec, &mix) < model.mix_cost_nosupport(&mix));
        // ...and loses only at a pathological update share.
        let mix = profiles::fig14_mix(0.9999);
        assert!(model.mix_cost(Ext::Full, &dec, &mix) > model.mix_cost_nosupport(&mix));
        let out = run();
        assert_eq!(out.tables[0].len(), 9);
        assert!(out.notes[0].contains("break-even"));
    }
}
