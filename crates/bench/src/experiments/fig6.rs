//! Figure 6 — query costs for a backward query `Q_{0,4}(bw)`
//! (Section 5.9.1).
//!
//! Page accesses for the whole-chain backward query under every extension,
//! binary vs non-decomposed, against the no-support baseline.  Paper's
//! claims: every supported evaluation beats the exhaustive search, and the
//! non-decomposed relations answer the full-span query cheaper than the
//! binary-decomposed ones.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let model = profiles::fig6_profile();
    let n = model.n();
    let mut out = ExperimentOutput::default();
    let nosup = model.qnas_bw(0, n);

    let mut table = Table::new(
        "Figure 6: Q_{0,4}(bw) page accesses",
        &["design", "binary dec", "no dec"],
    );
    for ext in Ext::ALL {
        table.row(vec![
            ext.name().to_string(),
            fmt(model.qsup_bw(ext, 0, n, &Dec::binary(n))),
            fmt(model.qsup_bw(ext, 0, n, &Dec::none(n))),
        ]);
    }
    table.row(vec!["no support".into(), fmt(nosup), fmt(nosup)]);
    out.push(table);

    let worst_supported = Ext::ALL
        .iter()
        .map(|&e| model.qsup_bw(e, 0, n, &Dec::binary(n)))
        .fold(f64::MIN, f64::max);
    out.note(format!(
        "every supported design beats no support: worst supported = {} vs {}",
        fmt(worst_supported),
        fmt(nosup)
    ));
    out.note("non-decomposed <= binary for the full-span query (one lookup vs a partition walk)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_claims_hold() {
        let model = profiles::fig6_profile();
        let n = model.n();
        let nosup = model.qnas_bw(0, n);
        for ext in Ext::ALL {
            for dec in [Dec::binary(n), Dec::none(n)] {
                assert!(model.qsup_bw(ext, 0, n, &dec) < nosup, "{ext} {dec}");
            }
            assert!(
                model.qsup_bw(ext, 0, n, &Dec::none(n))
                    <= model.qsup_bw(ext, 0, n, &Dec::binary(n)),
                "{ext}"
            );
        }
        assert_eq!(run().tables[0].len(), 5);
    }
}
