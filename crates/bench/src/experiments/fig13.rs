//! Figure 13 — update costs under varying object sizes (Section 6.3.3).
//!
//! `size_i` swept over 100 … 800 (binary decomposition), update `ins_1`.
//! Paper's claims: the update costs of canonical and right-complete grow
//! with object size (their searches run over the object representation);
//! left-complete needs only a forward search and is "only marginally
//! affected"; full never touches the data.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        "Figure 13: ins_1 update cost vs object size (binary decomposition)",
        &["size", "canonical", "full", "left", "right"],
    );
    let mut first: Option<Vec<f64>> = None;
    let mut last: Vec<f64> = Vec::new();
    for step in 0..8 {
        let size = 100.0 + step as f64 * 100.0;
        let model = profiles::fig13_profile(size);
        let dec = Dec::binary(model.n());
        let costs: Vec<f64> = Ext::ALL
            .iter()
            .map(|&e| model.update_cost(e, 1, &dec))
            .collect();
        if first.is_none() {
            first = Some(costs.clone());
        }
        last = costs.clone();
        table.row(vec![
            fmt(size),
            fmt(costs[0]),
            fmt(costs[1]),
            fmt(costs[2]),
            fmt(costs[3]),
        ]);
    }
    out.push(table);

    let first = first.unwrap();
    let growth: Vec<f64> = first.iter().zip(&last).map(|(a, b)| b - a).collect();
    out.note(format!(
        "growth 100 -> 800 bytes: canonical +{}, full +{}, left +{}, right +{}",
        fmt(growth[0]),
        fmt(growth[1]),
        fmt(growth[2]),
        fmt(growth[3])
    ));
    out.note("full is flat (no data search); canonical/right climb with the object size");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_pattern_matches_paper() {
        let dec = Dec::binary(4);
        let small = profiles::fig13_profile(100.0);
        let large = profiles::fig13_profile(800.0);
        let growth = |e: Ext| large.update_cost(e, 1, &dec) - small.update_cost(e, 1, &dec);
        assert_eq!(growth(Ext::Full), 0.0);
        assert!(growth(Ext::Canonical) > 0.0);
        assert!(growth(Ext::Right) > 0.0);
        assert!(growth(Ext::Canonical) > growth(Ext::Left));
        assert!(growth(Ext::Right) > growth(Ext::Left));
        assert_eq!(run().tables[0].len(), 8);
    }
}
