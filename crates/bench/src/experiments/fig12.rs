//! Figure 12 — update costs for another fixed application profile
//! (Section 6.3.2).
//!
//! Same experiment as Figure 11 on the modified profile with fan-outs
//! `2, 1, 1, 4`.  Paper's claim: "the update costs of the left-complete
//! and full extension are almost comparable."

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let model = profiles::fig12_profile();
    let n = model.n();
    let mut out = ExperimentOutput::default();

    let mut table = Table::new(
        "Figure 12: ins_3 update cost, fan = (2,1,1,4)",
        &["extension", "binary dec", "no dec"],
    );
    for ext in Ext::ALL {
        table.row(vec![
            ext.name().to_string(),
            fmt(model.update_cost(ext, 3, &Dec::binary(n))),
            fmt(model.update_cost(ext, 3, &Dec::none(n))),
        ]);
    }
    out.push(table);

    let left = model.update_cost(Ext::Left, 3, &Dec::binary(n));
    let full = model.update_cost(Ext::Full, 3, &Dec::binary(n));
    out.note(format!(
        "left ({}) and full ({}) are within {:.1}x — 'almost comparable'",
        fmt(left),
        fmt(full),
        (left / full).max(full / left)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_and_full_are_comparable() {
        let m = profiles::fig12_profile();
        let dec = Dec::binary(4);
        let left = m.update_cost(Ext::Left, 3, &dec);
        let full = m.update_cost(Ext::Full, 3, &dec);
        let ratio = (left / full).max(full / left);
        assert!(
            ratio < 3.0,
            "left={left:.1} full={full:.1} ratio={ratio:.2}"
        );
        // Right still loses badly on a right-end insertion.
        assert!(m.update_cost(Ext::Right, 3, &dec) > left);
        assert_eq!(run().tables[0].len(), 4);
    }
}
