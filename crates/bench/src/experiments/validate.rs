//! Empirical validation: measured page accesses on the live system vs the
//! analytical model's predictions.
//!
//! The paper evaluates everything analytically; this repository also has
//! the *actual* system (object store, dual-clustered B+ trees, incremental
//! maintenance).  This experiment generates a down-scaled database from
//! the Figure 6/11 profiles, runs real queries and updates while counting
//! real page accesses, and puts them next to the model's predictions for
//! the same (scaled) profile.  The check is shape-level: the same
//! orderings must emerge, and supported queries must beat the exhaustive
//! search by a comparable factor.

use asr_core::{AsrConfig, Decomposition, Extension};
use asr_costmodel::{profiles, CostModel, Dec, Ext, Mix, Op};
use asr_pagesim::IoSnapshot;
use asr_workload::{execute_trace, generate, generate_trace, scale_profile, GeneratorSpec};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

const SCALE: f64 = 5.0;
const QUERY_COUNT: usize = 30;
const UPDATE_COUNT: usize = 20;

fn core_ext(ext: Ext) -> Extension {
    match ext {
        Ext::Canonical => Extension::Canonical,
        Ext::Full => Extension::Full,
        Ext::Left => Extension::LeftComplete,
        Ext::Right => Extension::RightComplete,
    }
}

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let (table, io) = validate_queries();
    out.push(table);
    out.io.merge(&io);
    let (table, io) = validate_updates();
    out.push(table);
    out.io.merge(&io);
    out.note(format!(
        "measurements on 1/{SCALE:.0}-scale databases; predictions from the model on the \
         same scaled profile — agreement is judged on ordering and rough magnitude"
    ));
    out
}

/// Backward whole-chain query, every extension + no support.
fn validate_queries() -> (Table, IoSnapshot) {
    let mut io = IoSnapshot::default();
    let scaled = scale_profile(&profiles::fig6_profile().profile, SCALE);
    let model = CostModel::new(scaled.clone());
    let n = model.n();
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    let mix = Mix::new(vec![(1.0, Op::bw(0, n))], vec![], 0.0);

    let mut table = Table::new(
        format!("validate: Q_{{0,{n}}}(bw), measured vs predicted page accesses"),
        &["design", "measured/op", "predicted/op", "ratio"],
    );

    // No support.
    {
        let mut g = generate(&spec, 1);
        let trace = generate_trace(&g, &mix, QUERY_COUNT, 2);
        let path = g.path.clone();
        let report = execute_trace(&mut g.db, None, &path, &trace);
        io.merge(&g.db.stats().snapshot());
        let predicted = model.qnas_bw(0, n);
        table.row(vec![
            "no support".into(),
            fmt(report.mean_cost()),
            fmt(predicted),
            format!("{:.2}", report.mean_cost() / predicted),
        ]);
    }

    for ext in Ext::ALL {
        let mut g = generate(&spec, 1);
        let m = g.path.arity(false) - 1;
        let id =
            g.db.create_asr(
                g.path.clone(),
                AsrConfig {
                    extension: core_ext(ext),
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .expect("ASR builds");
        let trace = generate_trace(&g, &mix, QUERY_COUNT, 2);
        g.db.stats().reset();
        let path = g.path.clone();
        let report = execute_trace(&mut g.db, Some(id), &path, &trace);
        io.merge(&g.db.stats().snapshot());
        let predicted = model.qsup_bw(ext, 0, n, &Dec::binary(n));
        table.row(vec![
            format!("{} (binary)", ext.name()),
            fmt(report.mean_cost()),
            fmt(predicted),
            format!("{:.2}", report.mean_cost() / predicted.max(1.0)),
        ]);
    }
    (table, io)
}

/// `ins_3` updates, every extension.
fn validate_updates() -> (Table, IoSnapshot) {
    let mut io = IoSnapshot::default();
    let scaled = scale_profile(&profiles::fig11_profile().profile, SCALE);
    let model = CostModel::new(scaled.clone());
    let spec = GeneratorSpec::from_profile(&scaled, 1.0);
    let mix = Mix::new(vec![], vec![(1.0, Op::ins(3))], 1.0);

    let mut table = Table::new(
        "validate: ins_3, measured vs predicted page accesses",
        &["design", "measured/op", "predicted/op", "ratio"],
    );
    for ext in Ext::ALL {
        let mut g = generate(&spec, 3);
        let m = g.path.arity(false) - 1;
        let id =
            g.db.create_asr(
                g.path.clone(),
                AsrConfig {
                    extension: core_ext(ext),
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .expect("ASR builds");
        let trace = generate_trace(&g, &mix, UPDATE_COUNT, 4);
        g.db.stats().reset();
        let path = g.path.clone();
        let report = execute_trace(&mut g.db, Some(id), &path, &trace);
        io.merge(&g.db.stats().snapshot());
        g.db.asr(id)
            .unwrap()
            .check_consistency()
            .expect("consistent after updates");
        let predicted = model.update_cost(ext, 3, &Dec::binary(model.n()));
        table.row(vec![
            format!("{} (binary)", ext.name()),
            fmt(report.mean_cost()),
            fmt(predicted),
            format!("{:.2}", report.mean_cost() / predicted.max(1.0)),
        ]);
    }
    (table, io)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full experiment is sized for `--release` runs; unit tests use a
    /// miniature version to keep `cargo test` quick while still checking
    /// the orderings end to end.
    #[test]
    fn mini_validation_preserves_the_orderings() {
        let scaled = scale_profile(&profiles::fig6_profile().profile, 20.0);
        let spec = GeneratorSpec::from_profile(&scaled, 1.0);
        let n = scaled.n;
        let mix = Mix::new(vec![(1.0, Op::bw(0, n))], vec![], 0.0);

        let mut naive = generate(&spec, 1);
        let trace = generate_trace(&naive, &mix, 10, 2);
        let path = naive.path.clone();
        let naive_rep = execute_trace(&mut naive.db, None, &path, &trace);

        let mut indexed = generate(&spec, 1);
        let m = indexed.path.arity(false) - 1;
        let id = indexed
            .db
            .create_asr(
                indexed.path.clone(),
                AsrConfig {
                    extension: Extension::Full,
                    decomposition: Decomposition::binary(m),
                    keep_set_oids: false,
                },
            )
            .unwrap();
        indexed.db.stats().reset();
        let path = indexed.path.clone();
        let sup_rep = execute_trace(&mut indexed.db, Some(id), &path, &trace);

        assert!(
            sup_rep.total_accesses() < naive_rep.total_accesses(),
            "supported {} !< naive {}",
            sup_rep.total_accesses(),
            naive_rep.total_accesses()
        );
    }
}
