//! Figure 16 — left-complete vs full extension, n = 5 (Section 6.4.4).
//!
//! The anchored mix
//! `Q = {⅓ Q_{0,5}(bw), ⅓ Q_{0,4}(bw), ⅓ Q_{0,5}(fw)}`,
//! `U = {⅓ ins_3, ⅓ ins_0, ⅓ ins_4}` on the n = 5 profile, comparing the
//! left-complete and full extensions under the binary decomposition
//! `(0,1,2,3,4,5)` and the coarser `(0,3,4,5)`.

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let model = profiles::fig16_profile();
    let dbin = Dec::binary(5);
    let d0345 = Dec(vec![0, 3, 4, 5]);
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        "Figure 16: left vs full, n = 5 (cost/op)",
        &[
            "P_up",
            "left binary",
            "full binary",
            "left (0,3,4,5)",
            "full (0,3,4,5)",
            "no support",
        ],
    );
    for step in 0..=9 {
        let p_up = 0.05 + step as f64 * 0.1;
        let mix = profiles::fig16_mix(p_up);
        table.row(vec![
            format!("{p_up:.2}"),
            fmt(model.mix_cost(Ext::Left, &dbin, &mix)),
            fmt(model.mix_cost(Ext::Full, &dbin, &mix)),
            fmt(model.mix_cost(Ext::Left, &d0345, &mix)),
            fmt(model.mix_cost(Ext::Full, &d0345, &mix)),
            fmt(model.mix_cost_nosupport(&mix)),
        ]);
    }
    out.push(table);

    let mix = profiles::fig16_mix(0.2);
    out.note(format!(
        "all queries are t_0-anchored, so left supports the whole mix; at P_up=0.2 \
         left binary = {} vs full binary = {}",
        fmt(model.mix_cost(Ext::Left, &dbin, &mix)),
        fmt(model.mix_cost(Ext::Full, &dbin, &mix))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_is_competitive_on_anchored_mixes() {
        let model = profiles::fig16_profile();
        let dbin = Dec::binary(5);
        let mix = profiles::fig16_mix(0.2);
        let left = model.mix_cost(Ext::Left, &dbin, &mix);
        let full = model.mix_cost(Ext::Full, &dbin, &mix);
        assert!(left <= full * 1.5, "left={left:.1} full={full:.1}");
        // Both beat no support for query-heavy mixes.
        assert!(left < model.mix_cost_nosupport(&mix));
        assert_eq!(run().tables[0].len(), 10);
    }
}
