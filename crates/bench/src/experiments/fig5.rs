//! Figure 5 — varying the number of not-NULL attributes (Section 4.4.2).
//!
//! `d_0 … d_3` are swept simultaneously from 2500 to 10⁴ with `c_i = 10⁴`
//! and `fan = 2`; the plot shows the non-decomposed sizes of all four
//! extensions.  Paper's claims: sizes grow with `d_i`, and as `d_i → c_i`
//! the extensions converge ("because then (almost) all paths originate in
//! `t_0` and lead to `t_n`").

use asr_costmodel::{profiles, Dec, Ext};

use crate::experiments::ExperimentOutput;
use crate::table::{fmt, Table};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut out = ExperimentOutput::default();
    let mut table = Table::new(
        "Figure 5: sizes (bytes, no decomposition) while varying d_i",
        &["d_i", "canonical", "full", "left", "right", "max/min"],
    );
    let mut first_spread = 0.0;
    let mut last_spread = 0.0;
    for step in 0..=6 {
        let d = 2500.0 + step as f64 * 1250.0;
        let model = profiles::fig5_profile(d);
        let dec = Dec::none(model.n());
        let sizes: Vec<f64> = Ext::ALL
            .iter()
            .map(|&e| model.total_bytes(e, &dec))
            .collect();
        let max = sizes.iter().cloned().fold(f64::MIN, f64::max);
        let min = sizes.iter().cloned().fold(f64::MAX, f64::min);
        let spread = max / min;
        if step == 0 {
            first_spread = spread;
        }
        last_spread = spread;
        table.row(vec![
            fmt(d),
            fmt(sizes[0]),
            fmt(sizes[1]),
            fmt(sizes[2]),
            fmt(sizes[3]),
            format!("{spread:.2}"),
        ]);
    }
    out.push(table);
    out.note(format!(
        "extension sizes converge as d_i -> c_i: spread {first_spread:.2} -> {last_spread:.2}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_holds() {
        let out = run();
        let t = &out.tables[0];
        assert_eq!(t.len(), 7);
        assert!(out.notes[0].contains("converge"));
    }
}
