//! Serving micro-benchmark: scatter-gather span-query throughput on the
//! sharded coordinator, at shard counts 1/2/4, plus a chaos leg that
//! prices the retry/backoff tail of a hostile wire.
//!
//! Each point stages the same chain primary (generated object base, one
//! full binary-decomposed ASR, wrapped in a WAL-backed
//! [`DurableDatabase`]), seeds an N-shard fleet through the replication
//! substrate, and drives a fixed span-query script — every full-path
//! forward and backward query over a bounded start/target sample.  The
//! page accounting comes from [`Fleet::take_io`]: the merged scatter
//! I/O across all shards plus the hottest single shard's share.  Both
//! are deterministic (the page simulation is exact and chaos is
//! seeded), so they are safe to gate in trend comparisons;
//! wall-clock/throughput numbers are host-dependent and informational.
//!
//! The chaos leg runs the same script over 2 shards behind seeded
//! [`ChaosProfile`] channels, observing each query's wall latency into
//! an [`asr_obs::MetricsRegistry`] histogram and reporting the
//! p50/p95/p99 tail alongside the client-side retry bill.
//!
//! [`Fleet::take_io`]: asr_server::Fleet::take_io

use std::time::Instant;

use asr_core::{AsrConfig, AsrId, Cell, Decomposition, Extension};
use asr_durable::{ChaosProfile, DurableDatabase, FlushPolicy, MemStorage};
use asr_gom::Oid;
use asr_obs::MetricsRegistry;
use asr_server::ShardedDatabase;
use asr_workload::{generate, GeneratorSpec};

/// Latency histogram buckets (milliseconds).
const LATENCY_BOUNDS_MS: &[f64] = &[
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
];

/// One lossless throughput point at a fixed shard count.
#[derive(Debug, Clone, Copy)]
pub struct ServingPoint {
    /// Fleet size.
    pub shards: usize,
    /// Span queries executed.
    pub queries: u64,
    /// Result cells/oids gathered across all queries.
    pub rows: u64,
    /// Wall-clock for the whole script (host-dependent).
    pub wall_ms: f64,
    /// Queries per second (host-dependent).
    pub qps: f64,
    /// Merged scatter page accesses across the fleet (deterministic).
    pub merged_pages: u64,
    /// Page accesses on the hottest single shard (deterministic).
    pub hot_shard_pages: u64,
}

/// The hostile-wire leg: same script, chaotic channels.
#[derive(Debug, Clone, Copy)]
pub struct ChaosLeg {
    /// Chaos seed (drives [`ChaosProfile::from_seed`] and the channels).
    pub seed: u64,
    /// Span queries executed.
    pub queries: u64,
    /// Client-side frame resends across the fleet.
    pub retries: u64,
    /// Fault events injected across every shard's channel pair.
    pub injected: u64,
    /// Median per-query latency, milliseconds (host-dependent).
    pub p50_ms: f64,
    /// 95th-percentile per-query latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
}

/// The full serving benchmark result.
#[derive(Debug, Clone)]
pub struct ServingBench {
    /// Lossless throughput at shard counts 1/2/4.
    pub points: Vec<ServingPoint>,
    /// The chaotic 2-shard leg.
    pub chaos: ChaosLeg,
}

/// The staged primary shared by every point.
struct Staged {
    primary: DurableDatabase<MemStorage>,
    asr: AsrId,
    /// Path length `n`.
    n: usize,
    /// Full-path forward starts and backward targets.
    starts: Vec<Oid>,
    targets: Vec<Oid>,
}

/// Stage a chain primary: `scale` multiplies the level populations, so
/// tests can run a miniature of the published configuration.
fn stage(scale: usize) -> Staged {
    let s = scale.max(1);
    let spec = GeneratorSpec {
        counts: vec![12 * s, 24 * s, 48 * s, 96 * s],
        defined: vec![12 * s, 24 * s, 48 * s],
        fan: vec![2, 2, 2],
        sizes: vec![128, 128, 128, 128],
    };
    let g = generate(&spec, 0xA55E);
    let n = g.path.arity(false) - 1;
    let mut db = g.db;
    let dotted = g.path.to_string();
    let asr = db
        .create_asr_on(
            &dotted,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(n),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    let primary =
        DurableDatabase::create(MemStorage::new(), db, FlushPolicy::EveryRecord).expect("creates");
    const SAMPLE: usize = 24;
    Staged {
        primary,
        asr,
        n,
        starts: g.levels[0].iter().copied().take(SAMPLE).collect(),
        targets: g.levels[n].iter().copied().take(SAMPLE).collect(),
    }
}

/// Drive the full-path span script once; per-query latency lands in
/// `latency_ms` when a registry is supplied.  Returns `(queries, rows)`.
fn drive(
    sharded: &mut ShardedDatabase,
    staged: &Staged,
    latency: Option<&MetricsRegistry>,
) -> (u64, u64) {
    let (mut queries, mut rows) = (0u64, 0u64);
    let mut timed = |sharded: &mut ShardedDatabase,
                     q: &mut dyn FnMut(&mut ShardedDatabase) -> u64| {
        let started = Instant::now();
        let got = q(sharded);
        if let Some(reg) = latency {
            reg.observe(
                "serving.query.ms",
                LATENCY_BOUNDS_MS,
                started.elapsed().as_secs_f64() * 1e3,
            );
        }
        queries += 1;
        rows += got;
    };
    for &start in &staged.starts {
        timed(sharded, &mut |s| {
            s.forward(staged.asr, 0, staged.n, start)
                .expect("forward span")
                .len() as u64
        });
    }
    for &target in &staged.targets {
        let cell = Cell::Oid(target);
        timed(sharded, &mut |s| {
            s.backward(staged.asr, 0, staged.n, &cell)
                .expect("backward span")
                .len() as u64
        });
    }
    (queries, rows)
}

/// One lossless point at `shards` shards.
fn run_point(staged: &Staged, shards: usize) -> ServingPoint {
    let mut sharded =
        ShardedDatabase::from_primary(&staged.primary, shards, None).expect("fleet seeds");
    sharded.fleet_mut().take_io(); // discard seeding-era I/O
    let started = Instant::now();
    let (queries, rows) = drive(&mut sharded, staged, None);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (merged, hot) = sharded.fleet_mut().take_io();
    ServingPoint {
        shards,
        queries,
        rows,
        wall_ms,
        qps: queries as f64 / (wall_ms / 1e3).max(1e-9),
        merged_pages: merged.accesses(),
        hot_shard_pages: hot,
    }
}

/// The chaotic 2-shard leg under `seed`.
fn run_chaos(staged: &Staged, seed: u64) -> ChaosLeg {
    let chaos = Some((ChaosProfile::from_seed(seed), seed));
    let mut sharded =
        ShardedDatabase::from_primary(&staged.primary, 2, chaos).expect("fleet seeds");
    let registry = MetricsRegistry::new();
    let (queries, _) = drive(&mut sharded, staged, Some(&registry));
    let retries: u64 = sharded
        .fleet()
        .client_stats()
        .iter()
        .map(|s| s.retries)
        .sum();
    let injected: u64 = sharded
        .fleet()
        .channel_stats()
        .iter()
        .map(|(rx, tx)| {
            rx.dropped
                + rx.duplicated
                + rx.reordered
                + rx.truncated
                + rx.flipped
                + tx.dropped
                + tx.duplicated
                + tx.reordered
                + tx.truncated
                + tx.flipped
        })
        .sum();
    let (p50_ms, p95_ms, p99_ms) = registry
        .histogram("serving.query.ms")
        .and_then(|h| h.tail_summary())
        .expect("latency histogram is populated");
    ChaosLeg {
        seed,
        queries,
        retries,
        injected,
        p50_ms,
        p95_ms,
        p99_ms,
    }
}

/// Measure serving throughput at `scale` (see [`stage`]).
pub fn measure_serving_at(scale: usize) -> ServingBench {
    let staged = stage(scale);
    let points = [1usize, 2, 4]
        .iter()
        .map(|&shards| run_point(&staged, shards))
        .collect();
    let chaos = run_chaos(&staged, 0xC4A0);
    ServingBench { points, chaos }
}

/// The published configuration: the scale the snapshot binary records.
pub fn measure_serving() -> ServingBench {
    measure_serving_at(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature run must produce all three points, a non-trivial
    /// workload, and a chaos leg that actually injected faults and
    /// paid retries — with identical gather sizes at every shard count.
    #[test]
    fn miniature_serving_bench_is_well_formed() {
        let bench = measure_serving_at(1);
        assert_eq!(bench.points.len(), 3);
        let rows0 = bench.points[0].rows;
        for p in &bench.points {
            assert!(p.queries > 0, "shards={}: empty script", p.shards);
            assert_eq!(
                p.rows, rows0,
                "shards={}: scatter-gather changed the answer size",
                p.shards
            );
            assert!(p.merged_pages > 0, "shards={}: no pages counted", p.shards);
            assert!(
                p.hot_shard_pages <= p.merged_pages,
                "shards={}: hottest shard exceeds the merged total",
                p.shards
            );
            assert!(p.qps > 0.0);
        }
        assert_eq!(bench.chaos.queries, bench.points[0].queries);
        assert!(bench.chaos.injected > 0, "chaos profile injected nothing");
        assert!(bench.chaos.retries > 0, "damage cost no retries");
        assert!(bench.chaos.p99_ms >= bench.chaos.p50_ms);
    }
}
