//! Serving micro-benchmark: scatter-gather span-query throughput on the
//! sharded coordinator, at shard counts 1/2/4, plus a chaos leg that
//! prices the retry/backoff tail of a hostile wire.
//!
//! Each point stages the same chain primary (generated object base, one
//! full binary-decomposed ASR, wrapped in a WAL-backed
//! [`DurableDatabase`]), seeds an N-shard fleet through the replication
//! substrate, and drives a fixed span-query script — every full-path
//! forward and backward query over a bounded start/target sample.  The
//! page accounting comes from [`Fleet::take_io`]: the merged scatter
//! I/O across all shards plus the hottest single shard's share.  Both
//! are deterministic (the page simulation is exact and chaos is
//! seeded), so they are safe to gate in trend comparisons;
//! wall-clock/throughput numbers are host-dependent and informational.
//!
//! The chaos leg runs the same script over 2 shards behind seeded
//! [`ChaosProfile`] channels, observing each query's wall latency into
//! an [`asr_obs::MetricsRegistry`] histogram and reporting the
//! p50/p95/p99 tail alongside the client-side retry bill.
//!
//! [`Fleet::take_io`]: asr_server::Fleet::take_io

use std::rc::Rc;
use std::time::Instant;

use asr_core::{AsrConfig, AsrId, Cell, Decomposition, Extension};
use asr_durable::{ChaosProfile, DurableDatabase, FlushPolicy, MemStorage};
use asr_gom::Oid;
use asr_obs::{FlightRecorder, MetricsRegistry};
use asr_pagesim::PAGE_SIZE;
use asr_server::{ShardFaultPlan, ShardedDatabase};
use asr_workload::{generate, GeneratorSpec};

/// Latency histogram buckets (milliseconds).
const LATENCY_BOUNDS_MS: &[f64] = &[
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
];

/// One lossless throughput point at a fixed shard count.
#[derive(Debug, Clone, Copy)]
pub struct ServingPoint {
    /// Fleet size.
    pub shards: usize,
    /// Span queries executed.
    pub queries: u64,
    /// Result cells/oids gathered across all queries.
    pub rows: u64,
    /// Wall-clock for the whole script (host-dependent).
    pub wall_ms: f64,
    /// Queries per second (host-dependent).
    pub qps: f64,
    /// Merged scatter page accesses across the fleet (deterministic).
    pub merged_pages: u64,
    /// Page accesses on the hottest single shard (deterministic).
    pub hot_shard_pages: u64,
}

/// The hostile-wire leg: same script, chaotic channels.
#[derive(Debug, Clone, Copy)]
pub struct ChaosLeg {
    /// Chaos seed (drives [`ChaosProfile::from_seed`] and the channels).
    pub seed: u64,
    /// Span queries executed.
    pub queries: u64,
    /// Client-side frame resends across the fleet.
    pub retries: u64,
    /// Fault events injected across every shard's channel pair.
    pub injected: u64,
    /// Median per-query latency, milliseconds (host-dependent).
    pub p50_ms: f64,
    /// 95th-percentile per-query latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
}

/// What one self-healing reseed cost, read off the `shard.reseed.end`
/// flight event (all deterministic: lossless links, exact page model).
#[derive(Debug, Clone, Copy)]
pub struct ReseedCost {
    /// Shipper deliveries into the replacement node.
    pub deliveries: u64,
    /// Bytes the replacement's applier received during the bootstrap.
    pub bytes: u64,
    /// Those bytes expressed in modeled pages.
    pub pages: u64,
    /// Coordinator ticks from the crash to the recovered `Up`.
    pub ticks_to_recover: u64,
}

/// The availability leg: a 2-shard fleet loses one shard mid-script,
/// keeps answering degraded (flagged, never silently wrong), and heals
/// through the tick loop — priced for both reseed modes.
#[derive(Debug, Clone, Copy)]
pub struct AvailabilityLeg {
    /// Fleet size.
    pub shards: usize,
    /// Span queries issued while the shard was out.
    pub outage_queries: u64,
    /// Of those, answered with the explicit `partial` marker.
    pub degraded_queries: u64,
    /// Rows still gathered from the surviving shard while degraded.
    pub degraded_rows: u64,
    /// Rows the same script gathers on a healthy fleet (the subset
    /// denominator: degraded ≤ healthy, never a superset).
    pub healthy_rows: u64,
    /// Reseed cost when the crash retained the replica base (delta
    /// bootstrap: ship only the tail past the retained state).
    pub delta_reseed: ReseedCost,
    /// Reseed cost when the crash lost the node's disk (full
    /// bootstrap: checkpoint + entire tail).
    pub full_reseed: ReseedCost,
}

/// The full serving benchmark result.
#[derive(Debug, Clone)]
pub struct ServingBench {
    /// Lossless throughput at shard counts 1/2/4.
    pub points: Vec<ServingPoint>,
    /// The chaotic 2-shard leg.
    pub chaos: ChaosLeg,
    /// The shard-outage availability leg.
    pub availability: AvailabilityLeg,
}

/// The staged primary shared by every point.
struct Staged {
    primary: DurableDatabase<MemStorage>,
    asr: AsrId,
    /// Path length `n`.
    n: usize,
    /// Full-path forward starts and backward targets.
    starts: Vec<Oid>,
    targets: Vec<Oid>,
}

/// Stage a chain primary: `scale` multiplies the level populations, so
/// tests can run a miniature of the published configuration.
fn stage(scale: usize) -> Staged {
    let s = scale.max(1);
    let spec = GeneratorSpec {
        counts: vec![12 * s, 24 * s, 48 * s, 96 * s],
        defined: vec![12 * s, 24 * s, 48 * s],
        fan: vec![2, 2, 2],
        sizes: vec![128, 128, 128, 128],
    };
    let g = generate(&spec, 0xA55E);
    let n = g.path.arity(false) - 1;
    let mut db = g.db;
    let dotted = g.path.to_string();
    let asr = db
        .create_asr_on(
            &dotted,
            AsrConfig {
                extension: Extension::Full,
                decomposition: Decomposition::binary(n),
                keep_set_oids: false,
            },
        )
        .expect("ASR builds");
    let primary =
        DurableDatabase::create(MemStorage::new(), db, FlushPolicy::EveryRecord).expect("creates");
    const SAMPLE: usize = 24;
    Staged {
        primary,
        asr,
        n,
        starts: g.levels[0].iter().copied().take(SAMPLE).collect(),
        targets: g.levels[n].iter().copied().take(SAMPLE).collect(),
    }
}

/// Drive the full-path span script once; per-query latency lands in
/// `latency_ms` when a registry is supplied.  Returns `(queries, rows)`.
fn drive(
    sharded: &mut ShardedDatabase,
    staged: &Staged,
    latency: Option<&MetricsRegistry>,
) -> (u64, u64) {
    let (mut queries, mut rows) = (0u64, 0u64);
    let mut timed = |sharded: &mut ShardedDatabase,
                     q: &mut dyn FnMut(&mut ShardedDatabase) -> u64| {
        let started = Instant::now();
        let got = q(sharded);
        if let Some(reg) = latency {
            reg.observe(
                "serving.query.ms",
                LATENCY_BOUNDS_MS,
                started.elapsed().as_secs_f64() * 1e3,
            );
        }
        queries += 1;
        rows += got;
    };
    for &start in &staged.starts {
        timed(sharded, &mut |s| {
            s.forward(staged.asr, 0, staged.n, start)
                .expect("forward span")
                .len() as u64
        });
    }
    for &target in &staged.targets {
        let cell = Cell::Oid(target);
        timed(sharded, &mut |s| {
            s.backward(staged.asr, 0, staged.n, &cell)
                .expect("backward span")
                .len() as u64
        });
    }
    (queries, rows)
}

/// One lossless point at `shards` shards.
fn run_point(staged: &Staged, shards: usize) -> ServingPoint {
    let mut sharded =
        ShardedDatabase::from_primary(&staged.primary, shards, None).expect("fleet seeds");
    sharded.fleet_mut().take_io(); // discard seeding-era I/O
    let started = Instant::now();
    let (queries, rows) = drive(&mut sharded, staged, None);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let (merged, hot) = sharded.fleet_mut().take_io();
    ServingPoint {
        shards,
        queries,
        rows,
        wall_ms,
        qps: queries as f64 / (wall_ms / 1e3).max(1e-9),
        merged_pages: merged.accesses(),
        hot_shard_pages: hot,
    }
}

/// The chaotic 2-shard leg under `seed`.
fn run_chaos(staged: &Staged, seed: u64) -> ChaosLeg {
    let chaos = Some((ChaosProfile::from_seed(seed), seed));
    let mut sharded =
        ShardedDatabase::from_primary(&staged.primary, 2, chaos).expect("fleet seeds");
    let registry = MetricsRegistry::new();
    let (queries, _) = drive(&mut sharded, staged, Some(&registry));
    let retries: u64 = sharded
        .fleet()
        .client_stats()
        .iter()
        .map(|s| s.retries)
        .sum();
    let injected: u64 = sharded
        .fleet()
        .channel_stats()
        .iter()
        .map(|(rx, tx)| {
            rx.dropped
                + rx.duplicated
                + rx.reordered
                + rx.truncated
                + rx.flipped
                + tx.dropped
                + tx.duplicated
                + tx.reordered
                + tx.truncated
                + tx.flipped
        })
        .sum();
    let (p50_ms, p95_ms, p99_ms) = registry
        .histogram("serving.query.ms")
        .and_then(|h| h.tail_summary())
        .expect("latency histogram is populated");
    ChaosLeg {
        seed,
        queries,
        retries,
        injected,
        p50_ms,
        p95_ms,
        p99_ms,
    }
}

/// One outage scenario: crash shard 0 on its first post-arm op
/// (optionally losing its retained replica base, which forces the full
/// bootstrap path), replay the span script degraded, then tick until
/// the fleet heals.  Returns `(queries, degraded, rows, reseed bill)`.
/// Lossless links and the exact page model make every figure
/// deterministic.
/// Ops the primary commits while the shard is out: the delta the
/// replacement must catch up on (a delta reseed ships only these; a
/// full one re-ships the checkpoint too).
const OUTAGE_DELTA_OPS: usize = 12;

fn run_outage(staged: &mut Staged, lose_applier: bool) -> (u64, u64, u64, ReseedCost) {
    let mut sharded = ShardedDatabase::from_primary(&staged.primary, 2, None).expect("fleet seeds");
    let recorder = Rc::new(FlightRecorder::new(1 << 14));
    sharded.catalog().tracer().add_sink(recorder.clone());
    sharded.set_fault_plan(
        0,
        ShardFaultPlan {
            crash_at_op: Some(1),
            lose_applier,
            ..ShardFaultPlan::default()
        },
    );
    let (mut queries, mut degraded, mut rows) = (0u64, 0u64, 0u64);
    sharded.take_degraded();
    let mut note = |sharded: &mut ShardedDatabase, got: u64| {
        queries += 1;
        rows += got;
        if !sharded.take_degraded().is_empty() {
            degraded += 1;
        }
    };
    for &start in &staged.starts {
        let got = sharded
            .forward(staged.asr, 0, staged.n, start)
            .expect("degraded forward span")
            .len() as u64;
        note(&mut sharded, got);
    }
    for &target in &staged.targets {
        let cell = Cell::Oid(target);
        let got = sharded
            .backward(staged.asr, 0, staged.n, &cell)
            .expect("degraded backward span")
            .len() as u64;
        note(&mut sharded, got);
    }
    // The primary keeps committing through the outage — the leaf
    // instantiations are the delta the replacement must catch up on.
    let leaf = format!("T{}", staged.n);
    for _ in 0..OUTAGE_DELTA_OPS {
        staged.primary.instantiate(&leaf).expect("outage delta op");
    }
    let mut ticks = 0u64;
    while !sharded.all_up() {
        assert!(ticks < 64, "tick loop failed to heal the outage fleet");
        sharded.tick(&staged.primary);
        ticks += 1;
    }
    let attr = |ev: &asr_obs::FlightEvent, key: &str| -> Option<String> {
        ev.record
            .attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let end = recorder
        .tail(recorder.len())
        .into_iter()
        .find(|e| {
            e.record.name == "shard.reseed.end" && attr(e, "outcome").as_deref() == Some("ok")
        })
        .expect("the healed fleet recorded a successful reseed");
    let want_mode = if lose_applier { "full" } else { "delta" };
    assert_eq!(
        attr(&end, "mode").as_deref(),
        Some(want_mode),
        "reseed took the wrong bootstrap path"
    );
    let num = |key: &str| -> u64 {
        attr(&end, key)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("reseed.end missing numeric `{key}`"))
    };
    let bytes = num("bytes");
    (
        queries,
        degraded,
        rows,
        ReseedCost {
            deliveries: num("deliveries"),
            bytes,
            pages: bytes.div_ceil(PAGE_SIZE as u64),
            ticks_to_recover: num("ticks_down"),
        },
    )
}

/// The availability leg over both reseed modes; `healthy_rows` is the
/// same script's row total on a healthy 2-shard fleet.
fn run_availability(staged: &mut Staged, healthy_rows: u64) -> AvailabilityLeg {
    let (outage_queries, degraded_queries, degraded_rows, delta_reseed) = run_outage(staged, false);
    let (_, _, _, full_reseed) = run_outage(staged, true);
    AvailabilityLeg {
        shards: 2,
        outage_queries,
        degraded_queries,
        degraded_rows,
        healthy_rows,
        delta_reseed,
        full_reseed,
    }
}

/// Measure serving throughput at `scale` (see [`stage`]).
pub fn measure_serving_at(scale: usize) -> ServingBench {
    let mut staged = stage(scale);
    let points: Vec<ServingPoint> = [1usize, 2, 4]
        .iter()
        .map(|&shards| run_point(&staged, shards))
        .collect();
    let healthy_rows = points[1].rows;
    let chaos = run_chaos(&staged, 0xC4A0);
    let availability = run_availability(&mut staged, healthy_rows);
    ServingBench {
        points,
        chaos,
        availability,
    }
}

/// The published configuration: the scale the snapshot binary records.
pub fn measure_serving() -> ServingBench {
    measure_serving_at(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature run must produce all three points, a non-trivial
    /// workload, and a chaos leg that actually injected faults and
    /// paid retries — with identical gather sizes at every shard count.
    #[test]
    fn miniature_serving_bench_is_well_formed() {
        let bench = measure_serving_at(1);
        assert_eq!(bench.points.len(), 3);
        let rows0 = bench.points[0].rows;
        for p in &bench.points {
            assert!(p.queries > 0, "shards={}: empty script", p.shards);
            assert_eq!(
                p.rows, rows0,
                "shards={}: scatter-gather changed the answer size",
                p.shards
            );
            assert!(p.merged_pages > 0, "shards={}: no pages counted", p.shards);
            assert!(
                p.hot_shard_pages <= p.merged_pages,
                "shards={}: hottest shard exceeds the merged total",
                p.shards
            );
            assert!(p.qps > 0.0);
        }
        assert_eq!(bench.chaos.queries, bench.points[0].queries);
        assert!(bench.chaos.injected > 0, "chaos profile injected nothing");
        assert!(bench.chaos.retries > 0, "damage cost no retries");
        assert!(bench.chaos.p99_ms >= bench.chaos.p50_ms);

        // The availability leg: every outage query was answered, the
        // degraded ones were flagged and gathered a strict subset of
        // the healthy answer, and the delta reseed undercut the full
        // one on every shipping axis.
        let a = &bench.availability;
        assert_eq!(a.outage_queries, bench.points[0].queries);
        assert!(a.degraded_queries > 0, "outage produced no degraded reads");
        assert!(a.degraded_queries <= a.outage_queries);
        assert!(
            a.degraded_rows < a.healthy_rows,
            "losing a shard must shrink the gathered answer"
        );
        for cost in [&a.delta_reseed, &a.full_reseed] {
            assert!(cost.deliveries > 0, "reseed shipped nothing");
            assert!(cost.bytes > 0);
            assert!(cost.pages > 0);
            assert!(cost.ticks_to_recover > 0);
        }
        assert!(
            a.delta_reseed.bytes < a.full_reseed.bytes,
            "delta reseed must ship less than the full bootstrap"
        );
        assert!(a.delta_reseed.deliveries <= a.full_reseed.deliveries);
    }
}
